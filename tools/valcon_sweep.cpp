// valcon_sweep — runs a named scenario matrix (or one index-stable shard
// of it) and emits the per-scenario results plus an aggregate summary as
// JSON.
//
//   valcon_sweep [--matrix smoke|full|byzantine|validity|certs|committee]
//                [--strategies a,b,...] [--patterns a,b,...]
//                [--net-profiles a,b,...] [--cert-modes a,b,...]
//                [--topologies a,b,...]
//                [--jobs N] [--shard I/M]
//                [--checkpoint FILE] [--stop-after K] [--out FILE]
//                [--timing FILE] [--quiet]
//
// --strategies filters the matrix's fault dimension to the named adversary
// strategies ("none" selects the fault-free cells); --patterns,
// --net-profiles, --cert-modes and --topologies filter the
// proposal-pattern, network-profile, certificate-backend and topology
// dimensions the same way. Unknown names abort with the list of what is
// registered; a name the matrix does not sweep aborts too (nothing
// requested is dropped silently).
//
// --shard I/M runs the I-th (0-based) of M balanced, contiguous,
// index-stable slices of the matrix. Shard outputs carry a "shard" header
// and are recombined by valcon_merge into a document byte-identical to a
// single-shot run of the same matrix.
//
// --checkpoint FILE makes the run resumable: completed scenario lines are
// appended to FILE.scenarios and FILE atomically records the last
// contiguous completed index after every cell, so a killed run rerun with
// the same arguments skips every completed cell. --stop-after K bounds
// this invocation to K cells (exit 3 while the shard is incomplete) — the
// lever CI uses to force a mid-shard resume, and a budget knob for
// incremental 1e6+-cell sweeps.
//
// Cells are enumerated lazily (ScenarioMatrix::point_at) and streamed
// (SweepRunner::run_range), so memory stays O(jobs + output), never
// O(matrix). Per-scenario output is a deterministic function of the matrix
// alone; wall-clock timing lives only in the stderr table and the optional
// --timing stream (aggregate numbers plus one {index, label, micros}
// entry per cell this invocation ran), which is what lets CI diff sweep
// JSON byte-for-byte across job counts, shardings and resumes.
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "valcon/harness/sweep.hpp"
#include "valcon/harness/sweep_io.hpp"
#include "valcon/harness/table.hpp"

using namespace valcon;
using namespace valcon::harness;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--matrix smoke|full|byzantine|validity|certs|committee]"
               " [--strategies a,b,...] [--patterns a,b,...]"
               " [--net-profiles a,b,...] [--cert-modes a,b,...]"
               " [--topologies a,b,...]"
               " [--jobs N] [--shard I/M]"
               " [--checkpoint FILE] [--stop-after K] [--out FILE]"
               " [--timing FILE] [--quiet]\n";
  return 2;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

std::string join_csv(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ",";
    out += item;
  }
  return out;
}

/// The --timing stream: one {index, label, micros} entry per cell this
/// invocation actually ran (in index order, streamed as the serial sink
/// emits them so memory stays O(jobs), never O(cells)), then the
/// aggregate wall-clock numbers. Deliberately a separate file from the
/// sweep JSON, which must stay a deterministic function of the matrix
/// alone. Written to PATH.tmp and renamed into place on success, so a
/// crashed run never leaves a half-written file at PATH.
class TimingStream {
 public:
  [[nodiscard]] bool open(const std::string& path) {
    path_ = path;
    file_.open(path + ".tmp", std::ios::binary | std::ios::trunc);
    if (file_) file_ << "{\"scenarios\": [";
    return static_cast<bool>(file_);
  }
  [[nodiscard]] bool active() const { return file_.is_open(); }
  void add(const SweepOutcome& o) {
    file_ << (count_++ == 0 ? "\n  " : ",\n  ") << "{\"index\": "
          << o.point.index << ", \"label\": \""
          << io::json_escape(o.point.label)
          << "\", \"micros\": " << io::json_number(o.wall_micros) << "}";
  }
  [[nodiscard]] bool finish(int jobs, double wall, std::size_t cells_run) {
    file_ << (count_ > 0 ? "\n ],\n" : "],\n") << " \"jobs\": " << jobs
          << ", \"cells_run\": " << cells_run
          << ", \"wall_seconds\": " << io::json_number(wall)
          << ", \"scenarios_per_second\": "
          << io::json_number(
                 wall > 0 ? static_cast<double>(cells_run) / wall : 0)
          << "}\n";
    file_.flush();
    if (!file_) return false;
    file_.close();
    return std::rename((path_ + ".tmp").c_str(), path_.c_str()) == 0;
  }
  void discard() {
    if (!file_.is_open()) return;
    file_.close();
    std::remove((path_ + ".tmp").c_str());
  }

 private:
  std::string path_;
  std::ofstream file_;
  std::size_t count_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string matrix_name = "smoke";
  std::string strategies_csv;
  std::string patterns_csv;
  std::string net_profiles_csv;
  std::string cert_modes_csv;
  std::string topologies_csv;
  std::string out_path;
  std::string checkpoint_path;
  std::string timing_path;
  std::optional<io::ShardSpec> shard;
  int jobs = 1;
  long stop_after = -1;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--matrix" && i + 1 < argc) {
      matrix_name = argv[++i];
    } else if (arg == "--strategies" && i + 1 < argc) {
      strategies_csv = argv[++i];
    } else if (arg == "--patterns" && i + 1 < argc) {
      patterns_csv = argv[++i];
    } else if (arg == "--net-profiles" && i + 1 < argc) {
      net_profiles_csv = argv[++i];
    } else if (arg == "--cert-modes" && i + 1 < argc) {
      cert_modes_csv = argv[++i];
    } else if (arg == "--topologies" && i + 1 < argc) {
      topologies_csv = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      // Strict parse: "--jobs abc" / "--jobs -3" used to become 1 job
      // silently via atoi.
      const auto parsed = io::parse_int(argv[++i], 1);
      if (!parsed.has_value()) {
        std::cerr << "error: --jobs wants a positive integer, got '"
                  << argv[i] << "'\n";
        return usage(argv[0]);
      }
      jobs = *parsed;
    } else if (arg == "--shard" && i + 1 < argc) {
      shard = io::parse_shard_spec(argv[++i]);
      if (!shard.has_value()) {
        std::cerr << "error: --shard wants I/M with 0 <= I < M, got '"
                  << argv[i] << "'\n";
        return usage(argv[0]);
      }
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (arg == "--stop-after" && i + 1 < argc) {
      const auto parsed = io::parse_int(argv[++i], 1);
      if (!parsed.has_value()) {
        std::cerr << "error: --stop-after wants a positive integer, got '"
                  << argv[i] << "'\n";
        return usage(argv[0]);
      }
      stop_after = *parsed;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--timing" && i + 1 < argc) {
      timing_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (stop_after > 0 && checkpoint_path.empty()) {
    std::cerr << "error: --stop-after without --checkpoint would discard"
                 " the completed work\n";
    return usage(argv[0]);
  }

  ScenarioMatrix matrix = named_matrix("smoke");
  std::vector<std::string> strategies;
  std::vector<std::string> patterns;
  std::vector<std::string> net_profiles;
  std::vector<std::string> cert_modes;
  std::vector<std::string> topologies;
  try {
    matrix = named_matrix(matrix_name);
    if (!strategies_csv.empty()) {
      strategies = io::split_csv(strategies_csv);
      matrix.keep_strategies(strategies);
    }
    if (!patterns_csv.empty()) {
      patterns = io::split_csv(patterns_csv);
      matrix.keep_patterns(patterns);
    }
    if (!net_profiles_csv.empty()) {
      net_profiles = io::split_csv(net_profiles_csv);
      matrix.keep_network_profiles(net_profiles);
    }
    if (!cert_modes_csv.empty()) {
      cert_modes = io::split_csv(cert_modes_csv);
      matrix.keep_cert_modes(cert_modes);
    }
    if (!topologies_csv.empty()) {
      topologies = io::split_csv(topologies_csv);
      matrix.keep_topologies(topologies);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const std::size_t total = matrix.size();
  const io::ShardRange range =
      io::shard_range(total, shard.value_or(io::ShardSpec{0, 1}));

  // ---------------------------------------------------------- checkpoint
  io::Checkpoint cp;
  cp.matrix = matrix_name;
  // Filter identity is the *set* of names (neither the keep-order nor a
  // repeated name affects the matrix), so the joins are sorted and
  // deduped: a resume that spells the same filter differently still
  // matches its checkpoint. (Checkpoints from builds that recorded the
  // raw --strategies order may report a mismatch on a multi-name filter;
  // rerun that shard from scratch.)
  const auto sorted_join = [](std::vector<std::string> names) {
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return join_csv(names);
  };
  cp.strategies = sorted_join(strategies);
  cp.patterns = sorted_join(patterns);
  cp.net_profiles = sorted_join(net_profiles);
  cp.cert_modes = sorted_join(cert_modes);
  cp.topologies = sorted_join(topologies);
  cp.shard = shard.value_or(io::ShardSpec{0, 1});
  cp.total = total;
  cp.begin = range.begin;
  cp.end = range.end;
  cp.next = range.begin;
  const std::string sidecar =
      checkpoint_path.empty() ? "" : io::sidecar_path(checkpoint_path);
  if (!checkpoint_path.empty()) {
    try {
      if (file_exists(checkpoint_path)) {
        std::ifstream in(checkpoint_path, std::ios::binary);
        std::string text((std::istreambuf_iterator<char>(in)), {});
        const io::Checkpoint loaded = io::Checkpoint::parse(text);
        if (!loaded.same_work(cp)) {
          std::cerr << "error: checkpoint " << checkpoint_path
                    << " records different work (matrix, --strategies,"
                       " --patterns, --net-profiles, --cert-modes,"
                       " --topologies or shard mismatch);"
                       " delete it or rerun the original invocation\n";
          return 2;
        }
        cp = loaded;
        struct stat side_st {};
        const bool side_exists = ::stat(sidecar.c_str(), &side_st) == 0;
        if (cp.next > cp.begin && !side_exists) {
          std::cerr << "error: checkpoint sidecar " << sidecar
                    << " is missing\n";
          return 2;
        }
        // The sidecar may only ever be longer than the checkpoint records
        // (a crash between the append and the checkpoint update); shorter
        // means lost data, and truncate() would silently zero-extend it
        // into garbage lines.
        if (side_exists &&
            static_cast<std::uint64_t>(side_st.st_size) < cp.sidecar_bytes) {
          std::cerr << "error: sidecar " << sidecar << " is "
                    << side_st.st_size << " bytes but the checkpoint records "
                    << cp.sidecar_bytes
                    << "; delete both to restart this shard\n";
          return 2;
        }
        // Drop any line left behind by a crash after the sidecar append
        // but before the checkpoint update (possibly torn).
        if (side_exists &&
            ::truncate(sidecar.c_str(),
                       static_cast<off_t>(cp.sidecar_bytes)) != 0) {
          std::cerr << "error: cannot truncate sidecar " << sidecar << "\n";
          return 2;
        }
      } else {
        io::atomic_write(sidecar, "");
        io::atomic_write(checkpoint_path, cp.to_json());
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  // --------------------------------------------------------------- run
  const std::size_t resume_at = cp.next;
  const std::size_t stop =
      stop_after > 0
          ? std::min<std::size_t>(range.end,
                                  resume_at + static_cast<std::size_t>(
                                                  stop_after))
          : range.end;

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  const bool complete_this_run = stop == range.end;
  // The checkpoint path writes the document at assembly time instead.
  if (!out_path.empty() && checkpoint_path.empty()) {
    out_file.open(out_path, std::ios::binary | std::ios::trunc);
    if (!out_file) {
      std::cerr << "error: cannot open " << out_path << "\n";
      return 1;
    }
    out = &out_file;
  }

  const SweepRunner runner(jobs);
  io::JsonSummary summary;
  // Per-cell wall times for --timing, streamed as the sink emits them
  // (the sink runs serially in index order, so no synchronization). An
  // invocation with nothing to run — the idempotent rerun of a complete
  // checkpoint above all — must not clobber the timing data of the run
  // that did the work, so the stream only opens when cells will run.
  TimingStream timing;
  if (!timing_path.empty()) {
    if (stop > resume_at) {
      if (!timing.open(timing_path)) {
        std::cerr << "error: cannot open " << timing_path << ".tmp\n";
        return 1;
      }
    } else if (!quiet) {
      std::cerr << "timing: no cells to run; leaving " << timing_path
                << " untouched\n";
    }
  }
  const auto start = std::chrono::steady_clock::now();
  try {
    if (checkpoint_path.empty()) {
      // No checkpoint: stream scenario lines straight into the document.
      io::document_header(*out, matrix_name, shard, total);
      runner.run_range(matrix, range.begin, range.end,
                       [&](SweepOutcome&& o) {
                         if (timing.active()) timing.add(o);
                         const std::string line = io::outcome_line(o);
                         summary.add(io::parse_outcome_line(line));
                         *out << line
                              << (o.point.index + 1 < range.end ? ",\n"
                                                                : "\n");
                       });
    } else {
      // Checkpointed: stream lines into the sidecar, checkpoint after
      // every cell, and assemble the document once the shard is complete.
      // The sidecar append is fsynced before the checkpoint is written,
      // so the checkpoint never claims bytes the disk does not have.
      const int side_fd =
          ::open(sidecar.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
      if (side_fd < 0) {
        std::cerr << "error: cannot open sidecar " << sidecar << "\n";
        return 1;
      }
      try {
        runner.run_range(matrix, resume_at, stop, [&](SweepOutcome&& o) {
          if (timing.active()) timing.add(o);
          const std::string payload = io::outcome_line(o) + "\n";
          std::size_t written = 0;
          while (written < payload.size()) {
            const ssize_t n = ::write(side_fd, payload.data() + written,
                                      payload.size() - written);
            if (n < 0) {
              throw std::runtime_error("cannot append to sidecar " + sidecar);
            }
            written += static_cast<std::size_t>(n);
          }
          if (::fsync(side_fd) != 0) {
            throw std::runtime_error("cannot fsync sidecar " + sidecar);
          }
          cp.next = o.point.index + 1;
          cp.sidecar_bytes += payload.size();
          io::atomic_write(checkpoint_path, cp.to_json());
        });
      } catch (...) {
        ::close(side_fd);
        throw;
      }
      ::close(side_fd);
    }
  } catch (const std::exception& e) {
    timing.discard();
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const std::size_t cells_run = (checkpoint_path.empty() ? range.end : stop) -
                                (checkpoint_path.empty() ? range.begin
                                                         : resume_at);

  if (timing.active() && !timing.finish(runner.jobs(), wall, cells_run)) {
    std::cerr << "error: cannot write " << timing_path << "\n";
    return 1;
  }

  if (!complete_this_run) {
    if (!quiet) {
      std::cerr << "checkpoint: " << (cp.next - range.begin) << " of "
                << (range.end - range.begin) << " cells done ([" << range.begin
                << ", " << range.end << ") of " << total
                << "); rerun the same invocation without --stop-after to"
                   " finish\n";
    }
    return 3;
  }

  if (!checkpoint_path.empty()) {
    // Assemble the final document from the sidecar (also reached by a
    // rerun of an already-complete checkpoint, which makes emission
    // idempotent and recomputation-free).
    if (!out_path.empty()) {
      out_file.open(out_path, std::ios::binary | std::ios::trunc);
      if (!out_file) {
        std::cerr << "error: cannot open " << out_path << "\n";
        return 1;
      }
      out = &out_file;
    }
    io::document_header(*out, matrix_name, shard, total);
    const std::size_t count = range.end - range.begin;
    try {
      io::for_each_sidecar_line(
          sidecar, count, [&](const std::string& line, std::size_t i) {
            summary.add(io::parse_outcome_line(line));
            *out << line << (i + 1 < count ? ",\n" : "\n");
          });
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  io::document_footer(*out, summary);
  out->flush();
  if (!*out) {
    std::cerr << "error: cannot write "
              << (out_path.empty() ? "stdout" : out_path) << "\n";
    return 1;
  }

  if (!quiet) {
    Table table({"matrix", "shard", "cells", "ran", "jobs", "decided",
                 "agree-viol", "valid-viol", "errors", "wall(s)", "scen/s"});
    const io::ShardSpec spec = shard.value_or(io::ShardSpec{0, 1});
    table.add_row({matrix_name,
                   std::to_string(spec.index) + "/" +
                       std::to_string(spec.count),
                   std::to_string(summary.total), std::to_string(cells_run),
                   std::to_string(runner.jobs()),
                   std::to_string(summary.decided),
                   std::to_string(summary.agreement_violations),
                   std::to_string(summary.validity_violations),
                   std::to_string(summary.errors), fmt(wall),
                   fmt(wall > 0 ? static_cast<double>(cells_run) / wall : 0,
                       1)});
    table.print(std::cerr);
  }

  return summary.healthy() ? 0 : 1;
}
