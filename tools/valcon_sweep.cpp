// valcon_sweep — runs a named scenario matrix over the thread pool and
// emits the per-scenario results plus an aggregate summary as JSON.
//
//   valcon_sweep [--matrix smoke|full|byzantine] [--strategies a,b,...]
//                [--jobs N] [--out FILE] [--quiet]
//
// --strategies filters the matrix's fault dimension to the named adversary
// strategies ("none" selects the fault-free cells); unknown names abort
// with the list of registered strategies.
//
// Per-scenario output is a deterministic function of the matrix alone
// (timing lives only in the summary), so two runs with different --jobs
// produce identical "scenarios" arrays — which is how the tests and CI
// check that parallelism never changes results.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "valcon/harness/sweep.hpp"
#include "valcon/harness/table.hpp"

using namespace valcon;
using namespace valcon::harness;

namespace {

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void write_outcome(std::ostream& os, const SweepOutcome& o) {
  const ScenarioConfig& cfg = o.point.config;
  os << "    {\"label\": \"" << json_escape(o.point.label) << "\", "
     << "\"vc\": \"" << to_string(cfg.vc) << "\", "
     << "\"validity\": \"" << to_string(o.point.validity) << "\", "
     << "\"n\": " << cfg.n << ", \"t\": " << cfg.t << ", "
     << "\"gst\": " << json_number(cfg.gst) << ", "
     << "\"delta\": " << json_number(cfg.delta) << ", "
     << "\"seed\": " << cfg.seed << ", "
     << "\"faults\": [";
  bool first = true;
  for (const auto& [pid, fault] : cfg.faults) {
    if (!first) os << ", ";
    first = false;
    os << "{\"id\": " << pid << ", \"kind\": \"" << json_escape(fault.strategy)
       << "\"}";
  }
  os << "], ";
  if (!o.error.empty()) {
    os << "\"error\": \"" << json_escape(o.error) << "\"}";
    return;
  }
  os << "\"decided\": " << (o.decided ? "true" : "false") << ", "
     << "\"agreement\": " << (o.agreement ? "true" : "false") << ", "
     << "\"validity_ok\": " << (o.validity_ok ? "true" : "false") << ", "
     << "\"decisions\": {";
  first = true;
  for (const auto& [pid, v] : o.result.decisions) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << pid << "\": " << v;
  }
  os << "}, "
     << "\"last_decision_time\": " << json_number(o.result.last_decision_time)
     << ", \"message_complexity\": " << o.result.message_complexity
     << ", \"word_complexity\": " << o.result.word_complexity
     << ", \"messages_total\": " << o.result.messages_total
     << ", \"events\": " << o.result.events << "}";
}

void write_json(std::ostream& os, const std::string& matrix_name, int jobs,
                const std::vector<SweepOutcome>& outcomes,
                const SweepSummary& summary) {
  os << "{\n  \"matrix\": \"" << matrix_name << "\",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    write_outcome(os, outcomes[i]);
    os << (i + 1 < outcomes.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"summary\": {"
     << "\"total\": " << summary.total << ", \"decided\": " << summary.decided
     << ", \"agreement_violations\": " << summary.agreement_violations
     << ", \"validity_violations\": " << summary.validity_violations
     << ", \"errors\": " << summary.errors
     << ", \"mean_latency\": " << json_number(summary.mean_latency)
     << ", \"mean_message_complexity\": "
     << json_number(summary.mean_message_complexity)
     << ", \"mean_word_complexity\": "
     << json_number(summary.mean_word_complexity)
     << ", \"jobs\": " << jobs
     << ", \"wall_seconds\": " << json_number(summary.wall_seconds)
     << ", \"scenarios_per_second\": "
     << json_number(summary.scenarios_per_second) << "}\n}\n";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--matrix smoke|full|byzantine] [--strategies a,b,...]"
               " [--jobs N] [--out FILE] [--quiet]\n";
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto first = item.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = item.find_last_not_of(" \t");
    out.push_back(item.substr(first, last - first + 1));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string matrix_name = "smoke";
  std::string strategies_csv;
  std::string out_path;
  int jobs = 1;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--matrix" && i + 1 < argc) {
      matrix_name = argv[++i];
    } else if (arg == "--strategies" && i + 1 < argc) {
      strategies_csv = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<SweepPoint> points;
  try {
    ScenarioMatrix matrix = named_matrix(matrix_name);
    if (!strategies_csv.empty()) {
      matrix.keep_strategies(split_csv(strategies_csv));
    }
    points = matrix.build();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  const SweepRunner runner(jobs);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<SweepOutcome> outcomes = runner.run(points);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const SweepSummary summary = SweepRunner::summarize(outcomes, wall);

  std::ostringstream json;
  write_json(json, matrix_name, runner.jobs(), outcomes, summary);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "error: cannot open " << out_path << "\n";
      return 1;
    }
    out << json.str();
  } else {
    std::cout << json.str();
  }

  if (!quiet) {
    Table table({"matrix", "scenarios", "jobs", "decided", "agree-viol",
                 "valid-viol", "errors", "wall(s)", "scen/s"});
    table.add_row({matrix_name, std::to_string(summary.total),
                   std::to_string(runner.jobs()),
                   std::to_string(summary.decided),
                   std::to_string(summary.agreement_violations),
                   std::to_string(summary.validity_violations),
                   std::to_string(summary.errors), fmt(summary.wall_seconds),
                   fmt(summary.scenarios_per_second, 1)});
    table.print(std::cerr);
  }

  const bool healthy = summary.agreement_violations == 0 &&
                       summary.validity_violations == 0 &&
                       summary.errors == 0 && summary.decided == summary.total;
  return healthy ? 0 : 1;
}
